"""Integration: the Figure 1a repository tree's generated artifacts are
*executable*, not just present — a user who clones the tree can run the
stored experiment definitions verbatim."""

import shutil

import pytest
import yaml

from repro.core import generate_benchpark_tree
from repro.ramble import Workspace
from repro.systems import SystemExecutor, get_system


@pytest.fixture(scope="module")
def tree(tmp_path_factory):
    return generate_benchpark_tree(
        tmp_path_factory.mktemp("bp"),
        systems=["cts1", "ats2"],
        benchmarks=["saxpy", "quicksilver"],
    )


def workspace_from_tree(tree, tmp_path, benchmark, variant, system):
    """What the driver does: experiment ramble.yaml + per-system configs
    become a workspace."""
    config = yaml.safe_load(
        (tree / "experiments" / benchmark / variant / "ramble.yaml").read_text()
    )
    template = (tree / "experiments" / benchmark / variant /
                "execute_experiment.tpl").read_text()
    ws = Workspace.create(tmp_path / "ws", config=config, template=template)
    # satisfy the config's `include: ./configs/<system>/...` references
    dest = tmp_path / "ws" / "configs" / system
    dest.mkdir(parents=True, exist_ok=True)
    for fname in ("spack.yaml", "variables.yaml"):
        shutil.copy(tree / "configs" / system / fname, dest / fname)
    # the stored template targets the first generated system; retarget the
    # includes at the requested one
    cfg = ws.read_config()
    cfg["ramble"]["include"] = [f"./configs/{system}/spack.yaml",
                                f"./configs/{system}/variables.yaml"]
    ws.write_config(cfg)
    return ws


class TestTreeArtifactsRun:
    def test_saxpy_tree_config_runs_on_cts1(self, tree, tmp_path):
        ws = workspace_from_tree(tree, tmp_path, "saxpy", "openmp", "cts1")
        experiments = ws.setup()
        assert len(experiments) == 8  # the stored Figure 10 matrix
        ws.run(SystemExecutor(get_system("cts1")))
        results = ws.analyze()
        assert all(e["status"] == "SUCCESS" for e in results["experiments"])

    def test_quicksilver_tree_config_runs(self, tree, tmp_path):
        ws = workspace_from_tree(tree, tmp_path, "quicksilver", "openmp",
                                 "cts1")
        experiments = ws.setup()
        assert experiments
        ws.run(SystemExecutor(get_system("cts1")))
        results = ws.analyze()
        assert all(e["status"] == "SUCCESS" for e in results["experiments"])

    def test_tree_configs_parse_for_every_pair(self, tree):
        """Every stored ramble.yaml is valid YAML naming a known app."""
        from repro.ramble import builtin_applications

        apps = builtin_applications()
        for ramble_yaml in tree.glob("experiments/*/*/ramble.yaml"):
            config = yaml.safe_load(ramble_yaml.read_text())
            for app_name in config["ramble"]["applications"]:
                assert apps.exists(app_name), ramble_yaml

    def test_driver_script_invokes_cli(self, tree):
        script = (tree / "benchpark" / "bin" / "benchpark.sh").read_text()
        assert "repro.core.cli" in script
