"""Tests for the Benchpark core: component model (Table 1), repository
layout (Figure 1a), the driver workflow (Figure 1c), and the CLI."""

import json

import pytest
import yaml

from repro.core import (
    EXPERIMENT_VARIANTS,
    SpackRuntime,
    WORKFLOW_STEPS,
    benchpark_setup,
    experiment_ramble_yaml,
    generate_benchpark_tree,
    render_table1,
    render_tree,
    validate_tree,
    verify_cells,
)
from repro.core.cli import main as cli_main
from repro.core.driver import BenchparkError
from repro.core.layout import (
    system_compilers_yaml,
    system_packages_yaml,
    system_spack_yaml,
    system_variables_yaml,
)
from repro.systems import get_system


class TestComponents:
    def test_all_18_cells_implemented(self):
        cells = verify_cells()
        assert len(cells) == 18  # 6 components x 3 axes (Table 1)
        missing = [k for k, ok in cells.items() if not ok]
        assert not missing, f"unimplemented Table 1 cells: {missing}"

    def test_render_contains_paper_artifacts(self):
        text = render_table1()
        for artifact in ("package.py", "application.py", "archspec",
                         "variables.yaml", "success_criteria", ".gitlab-ci.yml",
                         "Hubcast"):
            assert artifact in text

    def test_render_row_order(self):
        text = render_table1()
        assert text.index("1 Source code") < text.index("6 CI testing")


class TestLayout:
    def test_generate_and_validate(self, tmp_path):
        root = generate_benchpark_tree(tmp_path / "benchpark")
        assert validate_tree(root) == []

    def test_validation_catches_missing(self, tmp_path):
        root = generate_benchpark_tree(tmp_path / "benchpark")
        (root / "configs" / "cts1" / "spack.yaml").unlink()
        problems = validate_tree(root)
        assert problems == ["missing configs/cts1/spack.yaml"]

    def test_figure1a_directories(self, tmp_path):
        root = generate_benchpark_tree(tmp_path / "bp")
        for sub in ("benchpark/bin", "configs", "experiments", "repo"):
            assert (root / sub).is_dir()
        # Figure 1a lines 20-40: per-benchmark variant dirs
        assert (root / "experiments" / "saxpy" / "openmp" / "ramble.yaml").exists()
        assert (root / "experiments" / "amg2023" / "rocm" /
                "execute_experiment.tpl").exists()

    def test_render_tree_text(self, tmp_path):
        root = generate_benchpark_tree(tmp_path / "bp")
        text = render_tree(root)
        assert "benchpark" in text and "configs" in text and "repo" in text

    def test_system_variables_yaml_figure12(self):
        data = system_variables_yaml(get_system("cts1"))["variables"]
        assert data["mpi_command"] == "srun -N {n_nodes} -n {n_ranks}"
        assert data["batch_submit"] == "sbatch {execute_experiment}"
        assert data["batch_nodes"] == "#SBATCH -N {n_nodes}"

    def test_scheduler_specific_directives(self):
        lsf = system_variables_yaml(get_system("ats2"))["variables"]
        assert lsf["batch_nodes"].startswith("#BSUB")
        flux = system_variables_yaml(get_system("ats4"))["variables"]
        assert "flux" in flux["batch_submit"]

    def test_system_packages_yaml_figure4(self):
        pkgs = system_packages_yaml(get_system("cts1"))["packages"]
        mkl = pkgs["intel-oneapi-mkl"]["externals"][0]
        assert mkl["spec"] == "intel-oneapi-mkl@2022.1.0"
        assert pkgs["mvapich2"]["buildable"] is False

    def test_system_spack_yaml_figure9(self):
        spack = system_spack_yaml(get_system("cts1"))["spack"]["packages"]
        assert spack["default-compiler"]["spack_spec"] == "gcc@12.1.1"
        assert "mvapich2" in spack["default-mpi"]["spack_spec"]

    def test_experiment_ramble_yaml_shapes(self):
        cfg = experiment_ramble_yaml("saxpy", "openmp", get_system("cts1"))
        apps = cfg["ramble"]["applications"]
        assert "saxpy" in apps
        spec = cfg["ramble"]["spack"]["packages"]["saxpy"]["spack_spec"]
        assert "+openmp" in spec

    def test_experiment_gpu_variants(self):
        cuda = experiment_ramble_yaml("saxpy", "cuda", get_system("ats2"))
        assert "+cuda" in cuda["ramble"]["spack"]["packages"]["saxpy"]["spack_spec"]
        with pytest.raises(KeyError, match="no 'quantum' variant|no variant"):
            experiment_ramble_yaml("saxpy", "quantum", get_system("ats2"))

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            experiment_ramble_yaml("hpl", "openmp", get_system("cts1"))


class TestDriver:
    def test_setup_creates_workspace(self, tmp_path):
        session = benchpark_setup("saxpy/openmp", "cts1", tmp_path / "ws")
        assert session.workspace.config_path.exists()
        assert (tmp_path / "ws" / ".benchpark" / "provenance.json").exists()
        assert session.steps[:3] == WORKFLOW_STEPS[1:4]

    def test_unknown_benchmark_rejected(self, tmp_path):
        with pytest.raises(BenchparkError, match="unknown benchmark"):
            benchpark_setup("hpl", "cts1", tmp_path / "ws")

    def test_unknown_variant_rejected(self, tmp_path):
        with pytest.raises(BenchparkError, match="variant"):
            benchpark_setup("saxpy/tpu", "cts1", tmp_path / "ws")

    def test_unknown_system_rejected(self, tmp_path):
        with pytest.raises(KeyError, match="unknown system"):
            benchpark_setup("saxpy", "frontier", tmp_path / "ws")

    def test_default_variant(self, tmp_path):
        session = benchpark_setup("saxpy", "cts1", tmp_path / "ws")
        assert session.variant == "openmp"

    def test_full_workflow_nine_steps(self, tmp_path):
        session = benchpark_setup("saxpy/openmp", "cts1", tmp_path / "ws")
        results = session.run_all()
        assert session.steps == WORKFLOW_STEPS[1:]
        assert len(results["experiments"]) == 8  # the Figure 10 matrix
        assert all(e["status"] == "SUCCESS" for e in results["experiments"])

    def test_software_installed_during_setup(self, tmp_path):
        session = benchpark_setup("saxpy/openmp", "cts1", tmp_path / "ws")
        session.setup()
        installed = [r.spec.name for r in session.runtime.store.all_records()]
        assert "saxpy" in installed

    def test_external_mpi_on_cts1(self, tmp_path):
        session = benchpark_setup("saxpy/openmp", "cts1", tmp_path / "ws")
        session.setup()
        mpi_specs = session.runtime.store.query()
        mvapich = [s for s in mpi_specs if s.name == "mvapich2"]
        assert mvapich and mvapich[0].external

    def test_run_before_setup_rejected(self, tmp_path):
        session = benchpark_setup("saxpy/openmp", "cts1", tmp_path / "ws")
        with pytest.raises(BenchparkError, match="setup"):
            session.run()

    def test_gpu_variant_builds_gpu_software(self, tmp_path):
        session = benchpark_setup("amg2023/cuda", "ats2", tmp_path / "ws")
        session.setup()
        names = {r.spec.name for r in session.runtime.store.all_records()}
        assert "cuda" in names

    def test_workflow_step_count_matches_figure1c(self):
        assert len(WORKFLOW_STEPS) == 9


class TestSpackRuntime:
    def test_target_from_archspec(self, tmp_path):
        rt = SpackRuntime(get_system("ats4"), tmp_path / "store")
        spec = rt.concretize_together(["saxpy"])[0]
        assert spec.target == "zen3_trento"

    def test_optimization_flags(self, tmp_path):
        rt = SpackRuntime(get_system("ats4"), tmp_path / "store")
        assert "znver3" in rt.optimization_flags("gcc", "12.1.1")

    def test_compilers_from_system(self, tmp_path):
        rt = SpackRuntime(get_system("ats2"), tmp_path / "store")
        spec = rt.concretize_together(["saxpy"])[0]
        assert spec.compiler.name in ("gcc", "clang")


class TestCli:
    def test_list_systems(self, capsys):
        assert cli_main(["list", "systems"]) == 0
        out = capsys.readouterr().out
        assert "cts1" in out and "ats2" in out and "ats4" in out

    def test_list_experiments(self, capsys):
        assert cli_main(["list", "experiments"]) == 0
        assert "saxpy/openmp" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert cli_main(["table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_tree(self, tmp_path, capsys):
        assert cli_main(["tree", str(tmp_path / "bp")]) == 0
        assert "configs" in capsys.readouterr().out

    def test_setup_and_analyze(self, tmp_path, capsys):
        ws = tmp_path / "ws"
        assert cli_main(["setup", "stream/openmp", "cloud-c6i", str(ws),
                         "--full"]) == 0
        out = capsys.readouterr().out
        assert "all SUCCESS" in out
        assert cli_main(["analyze", str(ws)]) == 0
        results = json.loads(capsys.readouterr().out)
        assert results["experiments"]

    def test_setup_unknown_system_exit_code(self, tmp_path, capsys):
        assert cli_main(["setup", "saxpy", "nonexistent", str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().err


class TestCliSuite:
    def test_suite_command(self, tmp_path, capsys):
        assert cli_main(["suite", "smoke", "cts1", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "saxpy/openmp" in out

    def test_suite_unknown(self, tmp_path, capsys):
        assert cli_main(["suite", "ghost", "cts1", str(tmp_path)]) == 2
        assert "unknown suite" in capsys.readouterr().err


class TestCliReport:
    def test_report_from_dump(self, tmp_path, capsys):
        from repro.ci import MetricsDatabase

        db = MetricsDatabase()
        db.record("saxpy", "cts1", "e1", "bandwidth", 3.0, "GB/s")
        db.dump(tmp_path / "db.json")
        assert cli_main(["report", str(tmp_path / "db.json")]) == 0
        out = capsys.readouterr().out
        assert "bandwidth" in out and "cts1" in out

    def test_report_missing_file(self, tmp_path, capsys):
        assert cli_main(["report", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err


class TestCliArchive:
    def test_archive_restore_roundtrip(self, tmp_path, capsys):
        ws = tmp_path / "ws"
        assert cli_main(["setup", "stream/openmp", "cts1", str(ws),
                         "--full"]) == 0
        capsys.readouterr()
        archive = tmp_path / "bundle.json"
        assert cli_main(["archive", str(ws), str(archive)]) == 0
        out = capsys.readouterr().out
        assert "manifest" in out

        restored = tmp_path / "restored"
        assert cli_main(["restore", str(archive), str(restored)]) == 0
        out = capsys.readouterr().out
        assert "restored workspace" in out
        assert (restored / "configs" / "ramble.yaml").exists()

    def test_restore_bad_archive(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert cli_main(["restore", str(bad), str(tmp_path / "x")]) == 2
        assert "error" in capsys.readouterr().err
