"""Tests for the continuous-benchmarking loop + regression tracking."""

import pytest

from repro.core.continuous import ContinuousBenchmarking
from repro.systems.failures import Degradation, FailureSchedule


class TestContinuousLoop:
    def test_epochs_accumulate_records(self, tmp_path):
        loop = ContinuousBenchmarking("stream/openmp", "cts1", tmp_path)
        loop.run(epochs=2)
        assert loop.epochs_run == 2
        assert len(loop.db) > 0
        history = loop.history("triad_bw")
        assert [e for e, _ in history] == [0.0, 1.0]

    def test_healthy_history_has_no_regressions(self, tmp_path):
        loop = ContinuousBenchmarking("stream/openmp", "cts1", tmp_path)
        loop.run(epochs=6)
        assert loop.regressions() == []

    def test_injected_dimm_failure_detected(self, tmp_path):
        """The §1 motivation end to end: a DIMM degradation at epoch 4
        appears as a bandwidth regression located at/after epoch 4."""
        schedule = FailureSchedule(
            [(4, Degradation("bad-dimm", memory_bw_factor=0.5))]
        )
        loop = ContinuousBenchmarking("stream/openmp", "cts1", tmp_path,
                                      schedule=schedule)
        loop.run(epochs=8)
        events = loop.regressions()
        assert events, "injected 2x bandwidth loss must be detected"
        bw_events = [e for e in events if "triad_bw" in e.metric]
        assert bw_events
        assert bw_events[0].epoch >= 4
        assert bw_events[0].ratio == pytest.approx(0.5, rel=0.2)

    def test_repaired_system_recovers(self, tmp_path):
        schedule = FailureSchedule([
            (2, Degradation("bad-dimm", memory_bw_factor=0.5)),
            (5, Degradation("healthy-again")),
        ])
        loop = ContinuousBenchmarking("stream/openmp", "cts1", tmp_path,
                                      schedule=schedule)
        loop.run(epochs=8)
        history = dict(loop.history("triad_bw"))
        assert history[7.0] > history[3.0] * 1.5  # post-repair ≫ degraded

    def test_report_mentions_events(self, tmp_path):
        schedule = FailureSchedule(
            [(3, Degradation("bad-dimm", memory_bw_factor=0.4))]
        )
        loop = ContinuousBenchmarking("stream/openmp", "cts1", tmp_path,
                                      schedule=schedule)
        loop.run(epochs=7)
        report = loop.report()
        assert "regression" in report
        assert "stream/openmp on cts1" in report

    def test_epoch_tag_in_manifest(self, tmp_path):
        loop = ContinuousBenchmarking("stream/openmp", "cts1", tmp_path)
        loop.run(epochs=1)
        rec = loop.db.query(fom_name="triad_bw")[0]
        assert rec.manifest["epoch"] == "0"

    def test_noise_varies_across_epochs(self, tmp_path):
        """Without epoch-salted jitter every epoch would be identical and
        regression detection would be trivially clean."""
        loop = ContinuousBenchmarking("stream/openmp", "cloud-c6i", tmp_path)
        loop.run(epochs=3)
        values = [v for _, v in loop.history("triad_bw")]
        assert len(set(values)) > 1
