#!/usr/bin/env python3
"""Cross-system scaling study with Extra-P modeling (paper §5, Figure 14).

The scenario the paper's future-work section describes end to end:

1. run an MPI_Bcast scaling campaign (OSU collective benchmark) on each of
   the three demonstration systems at increasing rank counts;
2. store every result in the metrics database together with its experiment
   manifest (functional reproducibility: the manifest regenerates the run);
3. feed the (nprocs, total time) series to Extra-P and print each system's
   fitted scaling model — on cts1 (contended fabric) the model comes out
   linear in p, matching the paper's Figure 14; on the binomial-tree fabrics
   it comes out logarithmic.

Usage:  python examples/scaling_study.py
"""

from repro.analysis import ascii_plot, fit_model
from repro.benchmarks.osu import run_collective
from repro.ci import MetricsDatabase
from repro.systems import get_system

RANKS = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 3456)
SYSTEMS = ("cts1", "ats2", "ats4")


def main() -> int:
    db = MetricsDatabase()

    for system_name in SYSTEMS:
        system = get_system(system_name)
        for p in RANKS:
            if p > system.total_cores:
                continue
            result = run_collective(
                "bcast", n_ranks=p, max_size=1 << 20, iterations=10,
                interconnect=system.interconnect, verify=False,
            )
            db.record(
                benchmark="osu-micro-benchmarks",
                system=system_name,
                experiment=f"osu_bcast_{p}",
                fom_name="total_time",
                value=result.total_seconds,
                units="s",
                manifest={"n_ranks": str(p), "collective": "bcast",
                          "max_size": str(1 << 20)},
            )

    print("MPI_Bcast scaling models (Extra-P fits, paper Figure 14):\n")
    for system_name in SYSTEMS:
        series = db.series("osu-micro-benchmarks", system_name,
                           "total_time", "n_ranks")
        model = fit_model(series)
        algo = get_system(system_name).interconnect.collective_algo
        print(f"=== {system_name} ({algo} fabric) ===")
        print(f"  model: {model}")
        print(f"  SMAPE: {model.smape:.3f}%   R^2: {model.r_squared:.5f}")
        xs = [x for x, _ in series]
        ys = [y for _, y in series]
        print(ascii_plot(xs, ys, model_ys=list(model.predict(xs)),
                         width=56, height=10))
        print()

    cts1_model = fit_model(
        db.series("osu-micro-benchmarks", "cts1", "total_time", "n_ranks")
    )
    assert cts1_model.i == 1.0 and cts1_model.j == 0, (
        "cts1 bcast should fit a p^(1) model like the paper's Figure 14"
    )
    print("cts1 model is linear in p — consistent with the paper's "
          "Extra-P model for MPI_Bcast on CTS.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
