#!/usr/bin/env python3
"""Procurement-style benchmarking: the §1/§7 scenario.

"During the procurement of a system, benchmarking is used to communicate
HPC center workloads with HPC vendors … benchmarks have been very much a
one-off or fairly static code base" — Benchpark instead freezes a *suite*
(a versioned set of experiment definitions) and runs it identically on
every proposed system.

This example runs the frozen ``procurement`` suite on all three paper
systems plus a cloud alternative, aggregates everything into the metrics
database, and renders the cross-system dashboard a procurement team would
compare vendors with.

Usage:  python examples/procurement_suite.py
"""

import tempfile
from pathlib import Path

from repro.analysis import render_report
from repro.ci import MetricsDatabase
from repro.core import get_suite, run_suite

SYSTEMS = ("cts1", "ats2", "ats4", "cloud-c6i")


def main() -> int:
    suite = get_suite("procurement")
    print(f"suite {suite.name!r} v{suite.version}: {suite.description}")
    print(f"experiments: {', '.join(suite.experiments)}\n")

    db = MetricsDatabase()
    with tempfile.TemporaryDirectory() as tmp:
        for system in SYSTEMS:
            run = run_suite("procurement", system, Path(tmp) / system, db=db)
            print(run.summary())
            print()

    print(render_report(db, title="Procurement comparison dashboard"))

    # The §7 claim: identical specifications ran everywhere; the comparison
    # is apples to apples because every record carries its manifest.
    manifests = {
        record.system: record.manifest.get("n")
        for record in db.query(benchmark="amg2023", fom_name="fom_solve")
    }
    assert len(set(manifests.values())) == 1, \
        "every system must have run the identical problem specification"
    print("\nidentical problem specifications confirmed on every system "
          f"(n = {next(iter(manifests.values()))}).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
