#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1c workflow in nine steps.

Runs the saxpy benchmark suite on the simulated cts1 system exactly as a
Benchpark user would:

    /bin/benchpark $experiment $system $workspace_dir
    ramble workspace setup && ramble on && ramble workspace analyze

Usage:  python examples/quickstart.py [experiment] [system]
        python examples/quickstart.py saxpy/openmp cts1
"""

import sys
import tempfile
from pathlib import Path

from repro.core import benchpark_setup


def main() -> int:
    experiment = sys.argv[1] if len(sys.argv) > 1 else "saxpy/openmp"
    system = sys.argv[2] if len(sys.argv) > 2 else "cts1"

    with tempfile.TemporaryDirectory() as tmp:
        workspace = Path(tmp) / "workspace"
        print(f"$ benchpark setup {experiment} {system} {workspace}\n")

        # Steps 2-4: generate the workspace from the experiment template and
        # the system profile.
        session = benchpark_setup(experiment, system, workspace)

        # Steps 5-6: ramble workspace setup (builds software through Spack).
        experiments = session.setup()
        print(f"workspace setup: {len(experiments)} experiments generated")
        for exp in experiments:
            print(f"  {exp.name:<28} ranks={exp.variables['n_ranks']}")
        installed = sorted(
            {r.spec.name for r in session.runtime.store.all_records()}
        )
        print(f"software installed via Spack: {', '.join(installed)}\n")

        # Step 8: ramble on.
        outcomes = session.run()
        failures = [o for o in outcomes if o["returncode"] != 0]
        print(f"ramble on: ran {len(outcomes)} experiments, "
              f"{len(failures)} failures\n")

        # Step 9: ramble workspace analyze.
        results = session.analyze()
        print(f"{'experiment':<28} {'status':<9} figures of merit")
        for record in results["experiments"]:
            foms = ", ".join(
                f"{f['name']}={f['value']}{f['units'] and ' ' + f['units']}"
                for f in record["figures_of_merit"]
                if f["name"] != "success"
            )
            print(f"{record['name']:<28} {record['status']:<9} {foms}")

        print("\nworkflow steps executed:")
        for step in session.steps:
            print(f"  {step}")
        return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
