#!/usr/bin/env python3
"""Co-design study: scoring vendor proposals before hardware exists.

§1: benchmarking "enables performance modeling across different hardware
… helps evaluate which of the proposed HPC systems will result in the best
performance for a particular HPC center workload, and is useful for
co-designing future HPC system procurements."

This example plays the procurement committee: three hypothetical vendor
proposals (a fat-memory CPU machine, a GPU-dense machine, and a
network-optimized machine) are scored against the incumbent (cts1) on the
procurement workload, using the same analytic performance models that
drive the simulated executors — so the paper benchmarks and the co-design
predictions share one calibrated model.

Usage:  python examples/codesign_study.py
"""

from repro.analysis import render_grid
from repro.systems import compare_systems, get_system
from repro.systems.descriptor import GpuSpec, InterconnectSpec, SystemDescriptor


def proposal(name, **kw) -> SystemDescriptor:
    base = dict(
        name=name, site="vendor", nodes=1024, cores_per_node=96,
        core_gflops=28.0, node_mem_bw_gbs=300.0, memory_per_node_gb=512.0,
        cpu_target="zen3",
        interconnect=InterconnectSpec("ndr", 0.8, 50.0, "binomial"),
    )
    base.update(kw)
    return SystemDescriptor(**base)


PROPOSALS = [
    proposal("vendor-a-fatmem", node_mem_bw_gbs=800.0),
    proposal(
        "vendor-b-gpu",
        gpu=GpuSpec("HX-100", 4, 96.0, 30000.0, 3300.0, runtime="cuda"),
    ),
    proposal(
        "vendor-c-network",
        interconnect=InterconnectSpec("ultra", 0.25, 200.0, "binomial"),
    ),
]


def main() -> int:
    reference = get_system("cts1")
    rows = compare_systems(PROPOSALS, reference=reference)

    print(f"procurement scoring vs incumbent {reference.name} "
          f"(geometric-mean speedup across the workload):\n")
    print(f"{'rank':<5} {'proposal':<18} {'score':>8}")
    for rank, row in enumerate(rows, 1):
        print(f"{rank:<5} {row['system']:<18} {row['score']:>8.2f}x")

    print("\nper-FOM speedups over the incumbent:")
    fom_names = list(rows[0]["speedups"])
    cells = {
        (row["system"], fom): row["speedups"][fom]
        for row in rows for fom in fom_names
    }
    print(render_grid([r["system"] for r in rows], fom_names, cells))

    print("\nreading the table:")
    print("- the GPU proposal wins the solver FOM (amg_fom_per_cycle),")
    print("- but at 512 ranks against cts1's contended fabric, *network*")
    print("  quality dominates everything that communicates — so the")
    print("  network-optimized proposal takes the overall score.")
    print("This is precisely the §1 trade-off a committee weighs: the")
    print("ranking flips with the workload mix, and the model quantifies")
    print("it before any hardware is built.")

    by_name = {row["system"]: row for row in rows}
    # The GPU machine must win the compute-bound FOM...
    assert max(rows, key=lambda r: r["speedups"]["amg_fom_per_cycle"])[
        "system"] == "vendor-b-gpu"
    # ...while the network machine wins overall against a contended-fabric
    # incumbent at scale.
    assert rows[0]["system"] == "vendor-c-network"
    assert by_name["vendor-c-network"]["speedups"]["bcast_seconds"] > \
        by_name["vendor-a-fatmem"]["speedups"]["bcast_seconds"]
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
