#!/usr/bin/env python3
"""Adding a new benchmark to Benchpark (paper §4).

"To add a benchmark to Benchpark, a full specification of the benchmark,
its build, and its run instructions for at least one platform is required"
— i.e. exactly one package.py and one application.py, both system-agnostic.

This example adds a fictional ``pingpong`` latency benchmark from scratch:

1. a Spack package class (build space: versions, variants, dependencies);
2. a Ramble application class (run command, workload, input variables,
   figures of merit, success criteria);
3. registration in overlay repositories (Benchpark's ``repo/`` directory);
4. a workspace that runs it on cts1 — with **no cts1-specific code added**:
   the system half comes entirely from the existing system profile, which is
   the orthogonality claim of Table 1.

Usage:  python examples/add_benchmark.py
"""

import tempfile
from pathlib import Path

from repro.ramble import SpackApplication, Workspace
from repro.ramble.application import (
    executable,
    figure_of_merit,
    success_criteria,
    workload,
    workload_variable,
)
from repro.ramble.apps import ApplicationRepository, builtin_applications
from repro.spack import AutotoolsPackage, depends_on, version
from repro.spack.repository import Repository, RepoPath, builtin_repo
from repro.systems import get_system
from repro.core.layout import system_variables_yaml


# ---------------------------------------------------------------------------
# 1. Benchmark-specific build recipe (package.py)
# ---------------------------------------------------------------------------
class Pingpong(AutotoolsPackage):
    """Point-to-point latency microbenchmark."""

    version("2.1")
    version("2.0")
    depends_on("mpi")


# ---------------------------------------------------------------------------
# 2. Benchmark-specific run recipe (application.py)
# ---------------------------------------------------------------------------
class PingpongApp(SpackApplication):
    """Ramble definition for pingpong (same shape as the paper's Fig 8)."""

    name = "pingpong"

    # Reuse the OSU driver with op=barrier as a stand-in executable; a real
    # benchmark would ship its own binary.
    executable("pp", "osu_bcast --op barrier --ranks {n_ranks} "
               "--max-size {msg_size} --iterations {iters}", use_mpi=True)
    workload("latency", executables=["pp"])
    workload_variable("msg_size", default="1024",
                      description="message size in bytes", workloads=["latency"])
    workload_variable("iters", default="50", description="iterations",
                      workloads=["latency"])
    figure_of_merit("total_time",
                    fom_regex=r"Total time: (?P<t>[0-9.eE+-]+) s",
                    group_name="t", units="s")
    success_criteria("complete", mode="string", match=r"Benchmark complete",
                     file="{experiment_run_dir}/{experiment_name}.out")


def main() -> int:
    # -----------------------------------------------------------------
    # 3. Register both halves in overlay repos (Benchpark repo/ dir).
    # -----------------------------------------------------------------
    overlay_packages = Repository("benchpark-overlay")
    overlay_packages.register(Pingpong)
    repo_path = RepoPath(overlay_packages, builtin_repo())
    print(f"package repo: {repo_path}")
    print(f"  pingpong versions: "
          f"{[str(v) for v in repo_path.get_class('pingpong').available_versions()]}")

    apps = builtin_applications()
    apps.register(PingpongApp)
    print(f"application repo now has: {apps.all_names()}\n")

    # -----------------------------------------------------------------
    # 4. Run it on cts1 using only the existing system profile.
    # -----------------------------------------------------------------
    system = get_system("cts1")
    config = {
        "ramble": {
            "variables": system_variables_yaml(system)["variables"],
            "applications": {
                "pingpong": {
                    "workloads": {
                        "latency": {
                            "experiments": {
                                "pingpong_{msg_size}_{n_ranks}": {
                                    "variables": {
                                        "n_ranks": ["2", "4", "8"],
                                        "msg_size": "4096",
                                    },
                                    "matrices": [["n_ranks"]],
                                }
                            }
                        }
                    }
                }
            },
        }
    }

    with tempfile.TemporaryDirectory() as tmp:
        ws = Workspace.create(Path(tmp) / "ws", config=config)
        experiments = ws.setup()
        print(f"generated {len(experiments)} experiments on {system.name}:")
        for e in experiments:
            print(f"  {e.name}")

        from repro.systems import SystemExecutor

        ws.run(SystemExecutor(system))
        results = ws.analyze()
        print(f"\n{'experiment':<22} {'status':<9} total_time")
        for record in results["experiments"]:
            foms = {f["name"]: f["value"] for f in record["figures_of_merit"]}
            print(f"{record['name']:<22} {record['status']:<9} "
                  f"{foms.get('total_time', '—')} s")

        ok = all(r["status"] == "SUCCESS" for r in results["experiments"])
        print("\nA new benchmark ran on an existing system with zero "
              "system-specific additions — Table 1's orthogonality in action."
              if ok else "\nsome experiments failed")
        return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
