#!/usr/bin/env python3
"""Reproducing the §7.1 collaboration story: on-premise vs cloud divergence.

The paper recounts moving "a few simple benchmark kernels between an
on-premise supercomputer and cloud instances of similar architecture" —
and a microbenchmark that worked on one system crashed on the other because
of "a bug in the underlying math library related to a specific hardware
feature (which was missing in the cloud)".

This example shows how Benchpark makes that failure *visible and
attributable* instead of a weeks-long human hunt:

1. the same benchmark suite runs on cts1 (on-prem, broadwell) and
   cloud-c6i (icelake) from identical experiment specifications;
2. archspec exposes exactly which hardware features differ between the two
   targets — the class of root cause in the paper's anecdote;
3. both runs carry full manifests, so the performance comparison (and any
   divergence) is pinned to a reproducible specification.

Usage:  python examples/cloud_vs_onprem.py
"""

import tempfile
from pathlib import Path

from repro.archspec import get_target
from repro.ci import MetricsDatabase
from repro.core import benchpark_setup
from repro.analysis import render_grid

SYSTEMS = ("cts1", "cloud-c6i")
EXPERIMENT = "stream/openmp"


def main() -> int:
    db = MetricsDatabase()

    print(f"running {EXPERIMENT} on {', '.join(SYSTEMS)} from the same "
          f"experiment specification\n")
    with tempfile.TemporaryDirectory() as tmp:
        for system in SYSTEMS:
            session = benchpark_setup(EXPERIMENT, system,
                                      Path(tmp) / f"ws-{system}")
            results = session.run_all()
            db.ingest_analysis(system, results)
            ok = all(e["status"] == "SUCCESS" for e in results["experiments"])
            print(f"  {system}: {len(results['experiments'])} experiments, "
                  f"{'all SUCCESS' if ok else 'FAILURES'}")

    # -- performance comparison -------------------------------------------
    print("\nSTREAM Triad bandwidth (MB/s), identical specs on both systems:")
    rows = sorted({r.experiment for r in db.query(fom_name="triad_bw")})
    cells = {
        (r.experiment, r.system): float(r.value)
        for r in db.query(fom_name="triad_bw")
    }
    print(render_grid(rows, list(SYSTEMS), cells))

    # -- the archspec diagnosis ---------------------------------------------
    onprem = get_target("broadwell")
    cloud = get_target("icelake")
    missing_in_onprem = sorted(cloud.features - onprem.features)
    missing_in_cloud = sorted(onprem.features - cloud.features)
    print("\narchspec feature diff (the paper's root-cause class — a math "
          "library keyed on a feature absent on one side):")
    print(f"  on cloud-c6i (icelake) but not cts1 (broadwell): "
          f"{', '.join(missing_in_onprem[:8])}")
    print(f"  on cts1 but not cloud-c6i: "
          f"{missing_in_cloud or '(none — icelake is a superset here)'}")

    # A library built for the on-prem target runs in the cloud only if the
    # cloud target is compatible; archspec answers that directly.
    compatible = cloud >= onprem
    print(f"\ncan a broadwell-optimized binary run on icelake?  "
          f"{'yes' if compatible else 'no'} (archspec partial order)")
    print("Every run above carries its full manifest, so this comparison is "
          "reproducible by any collaborator — the §7.1 debugging loop "
          "collapses from weeks of cross-site email to one diff.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
