#!/usr/bin/env python3
"""Tracking system performance over time & diagnosing hardware failures.

The paper's §1 lists this as a core benchmarking role once a system is in
service: "benchmarking is a useful tool for tracking system performance
over time and diagnosing hardware failures."

This example runs a 12-epoch continuous-benchmarking history of STREAM on
cts1 while the machine silently degrades — a DIMM drops to half bandwidth
at epoch 5 and is repaired at epoch 9 — then reconstructs the incident
purely from the stored figures of merit:

* the per-epoch FOM history (what the dashboard would plot),
* regression events with epoch, magnitude, and direction,
* the repair visible as recovery in the series.

Usage:  python examples/performance_tracking.py
"""

import tempfile
from pathlib import Path

from repro.analysis import ascii_plot
from repro.core.continuous import ContinuousBenchmarking
from repro.systems.failures import Degradation, FailureSchedule


def main() -> int:
    schedule = FailureSchedule([
        (5, Degradation("bad-dimm", memory_bw_factor=0.5)),
        (9, Degradation("dimm-replaced")),
    ])

    with tempfile.TemporaryDirectory() as tmp:
        loop = ContinuousBenchmarking(
            "stream/openmp", "cts1", Path(tmp),
            schedule=schedule,
        )
        print("running 12 benchmarking epochs on cts1 "
              "(failure injected at epoch 5, repair at 9)...\n")
        loop.run(epochs=12)

        history = loop.history("triad_bw")
        print("STREAM Triad bandwidth history (MB/s):")
        print(f"{'epoch':>6} {'triad_bw':>12}")
        for epoch, value in history:
            marker = ""
            if epoch == 5:
                marker = "   <- DIMM degradation injected"
            elif epoch == 9:
                marker = "   <- DIMM replaced"
            print(f"{epoch:>6g} {value:>12.0f}{marker}")

        xs = [e for e, _ in history]
        ys = [v for _, v in history]
        print()
        print(ascii_plot(xs, ys, width=48, height=10))

        print("\nregression scan over the stored history:")
        events = loop.regressions()
        for event in events:
            print(f"  {event}")
        if not events:
            print("  (none)")

        print(f"\n{loop.report()}")

        # Localize the incident from the *major* bandwidth drops: the bad
        # DIMM halves bandwidth (~50% drop), while run-to-run measurement
        # jitter can graze the detector's 10% threshold at any epoch.
        bw_events = [e for e in events
                     if e.metric.rsplit("/", 1)[-1] in ("triad_bw", "copy_bw")
                     and e.ratio < 0.75]
        assert bw_events and 5 <= min(e.epoch for e in bw_events) <= 6, \
            "the injected failure must be localized at its epoch"
        print("\nThe incident was reconstructed from FOM history alone — "
              "no human watched the machine.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
