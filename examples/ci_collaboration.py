#!/usr/bin/env python3
"""The Figure 6 automation loop, end to end.

A contributor without an LLNL account forks Benchpark on GitHub and opens a
pull request adding an experiment.  The example walks the paper's §3.3
security workflow:

1. the PR sits at *pending* until a site administrator reviews it;
2. on approval, **Hubcast** mirrors the branch to the site GitLab;
3. GitLab CI runs the pipeline through **Jacamar**, which executes the jobs
   as the *approver* (the contributor has no site account — §3.3.2);
4. the CI job actually builds (mini-Spack, publishing to the S3-backed
   binary cache) and runs the benchmark, recording FOMs in the metrics DB;
5. the pipeline status streams back to GitHub as a native check, and the
   PR becomes mergeable.

Usage:  python examples/ci_collaboration.py
"""

import tempfile
from pathlib import Path

from repro.ci import (
    GitHub,
    GitLab,
    Hubcast,
    JacamarExecutor,
    MetricsDatabase,
    ObjectStore,
    Runner,
    SecurityCriteria,
    SiteAccounts,
)
from repro.ci.pipeline import CiJob
from repro.core import benchpark_setup
from repro.spack import BinaryCache

CI_YAML = """
stages: [bench]
saxpy-cts1:
  stage: bench
  tags: [cts1]
  script: ["benchpark setup saxpy/openmp cts1 $WORKSPACE --full"]
"""


def main() -> int:
    # -- infrastructure ---------------------------------------------------
    github = GitHub()
    canonical = github.create_repo("llnl", "benchpark")
    canonical.git.commit("main", "seed benchpark", "olga", {
        ".gitlab-ci.yml": CI_YAML,
        "README.md": "Benchpark",
    })
    gitlab = GitLab("llnl-gitlab")
    s3 = ObjectStore()
    cache = BinaryCache(backend=s3.create_bucket("spack-binary-cache"))
    metrics = MetricsDatabase()
    site = SiteAccounts("LLNL", users={"site_admin", "olga"})

    tmp = tempfile.mkdtemp()

    def run_benchmark_job(job: CiJob, user: str):
        """The CI job body: a real Benchpark run on the simulated system."""
        workspace = Path(tmp) / f"ws-{job.name}"
        session = benchpark_setup("saxpy/openmp", "cts1", workspace)
        session.setup(binary_cache=cache)
        session.run()
        results = session.analyze()
        n = metrics.ingest_analysis("cts1", results)
        ok = all(e["status"] == "SUCCESS" for e in results["experiments"])
        return ok, (f"ran as {user}: {len(results['experiments'])} experiments, "
                    f"{n} FOMs recorded")

    jacamar = JacamarExecutor(site, run_benchmark_job)
    hubcast = Hubcast(canonical, gitlab,
                      SecurityCriteria(trusted_users={"olga"}))

    # -- the collaboration story --------------------------------------------
    print("1. contributor (no LLNL account) forks and opens a PR")
    fork = canonical.fork("grad_student")
    fork.git.create_branch("add-experiment")
    fork.git.commit("add-experiment", "add saxpy strong-scaling experiment",
                    "grad_student",
                    {"experiments/saxpy/openmp/ramble.yaml": "# new experiment"})
    pr = canonical.open_pull_request(fork, "add-experiment",
                                     "Add saxpy strong-scaling", "grad_student")
    print(f"   PR #{pr.number} status: {pr.statuses['hubcast/gitlab-ci'].state}")

    print("\n2. Hubcast refuses to mirror before admin review")
    assert hubcast.process_pr(pr) is None
    print(f"   {hubcast.audit_log[-1]}")

    print("\n3. site administrator reviews and approves")
    pr.approve("site_admin", is_admin=True, comment="experiment looks safe")
    gitlab.runners.clear()
    gitlab.register_runner(Runner(
        "cts1-runner", ["cts1"],
        jacamar.bound_runner(pr.author, approved_by=pr.admin_approver),
    ))

    print("\n4. Hubcast mirrors; GitLab CI runs via Jacamar")
    pipeline = hubcast.process_pr(pr)
    assert pipeline is not None
    for job in pipeline.jobs:
        print(f"   job {job.name}: {job.status} "
              f"(ran as {job.run_as_user!r} on runner {job.runner!r})")
        print(f"     log: {job.log}")
    print(f"   jacamar audit: {jacamar.audit_log[-1]}")

    print("\n5. status streams back to GitHub; PR becomes mergeable")
    print(f"   PR #{pr.number} check: {pr.statuses['hubcast/gitlab-ci'].state}")
    canonical.merge(pr.number)
    print(f"   PR #{pr.number} state: {pr.state}")

    print(f"\nbinary cache now holds {len(s3.bucket('spack-binary-cache').list())} "
          f"package binaries; metrics DB holds {len(metrics)} FOM records")
    usage = metrics.benchmark_usage()
    print(f"benchmark usage metrics (§5): {usage}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
